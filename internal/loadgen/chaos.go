package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"

	"scalia"
	"scalia/client"
)

// Action is one chaos event type.
type Action string

// The chaos vocabulary: every fault-injection pattern the engine's unit
// harnesses exercise, scripted against a live deployment through the
// admin API.
const (
	// ActionProviderDown injects a transient outage on Provider.
	ActionProviderDown Action = "provider-down"
	// ActionProviderUp clears the outage on Provider.
	ActionProviderUp Action = "provider-up"
	// ActionSetPricing replaces Provider's price sheet with Pricing (a
	// market price event).
	ActionSetPricing Action = "set-pricing"
	// ActionOptimize triggers one optimization round.
	ActionOptimize Action = "optimize"
	// ActionRepair triggers a repair pass (Policy "wait" or "active",
	// default "active").
	ActionRepair Action = "repair"
	// ActionAddProvider registers the provider described by Spec (the
	// CheapStor market-entry scenario).
	ActionAddProvider Action = "add-provider"
	// ActionRemoveProvider deregisters Provider (market exit).
	ActionRemoveProvider Action = "remove-provider"
)

// Duration is a time.Duration that unmarshals from either a Go duration
// string ("12s", "1m30s") or a bare JSON number of seconds.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("loadgen: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	secs, err := strconv.ParseFloat(string(bytes.TrimSpace(b)), 64)
	if err != nil {
		return fmt.Errorf("loadgen: bad duration %s: %w", b, err)
	}
	*d = Duration(secs * float64(time.Second))
	return nil
}

// MarshalJSON implements json.Marshaler (duration-string form).
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Event is one timestamped chaos event. At is the offset from the start
// of the paced run; which other fields matter depends on Action.
type Event struct {
	At       Duration         `json:"at"`
	Action   Action           `json:"action"`
	Provider string           `json:"provider,omitempty"`
	Pricing  *scalia.Pricing  `json:"pricing,omitempty"`
	Policy   string           `json:"policy,omitempty"`
	Spec     *scalia.Provider `json:"spec,omitempty"`
}

// validate rejects events the executor could not act on, so schedule
// mistakes surface at parse time instead of mid-run.
func (e Event) validate() error {
	if e.At < 0 {
		return fmt.Errorf("negative offset %s", time.Duration(e.At))
	}
	switch e.Action {
	case ActionProviderDown, ActionProviderUp, ActionRemoveProvider:
		if e.Provider == "" {
			return fmt.Errorf("%s requires a provider", e.Action)
		}
	case ActionSetPricing:
		if e.Provider == "" || e.Pricing == nil {
			return fmt.Errorf("%s requires provider and pricing", e.Action)
		}
	case ActionAddProvider:
		if e.Spec == nil {
			return fmt.Errorf("%s requires a spec", e.Action)
		}
	case ActionOptimize:
	case ActionRepair:
		if e.Policy != "" && e.Policy != "wait" && e.Policy != "active" {
			return fmt.Errorf("repair policy %q (want wait or active)", e.Policy)
		}
	default:
		return fmt.Errorf("unknown action %q", e.Action)
	}
	return nil
}

// Schedule is a replayable chaos script: events sorted by offset,
// executed by a scheduler goroutine against the live deployment while
// the load runs.
type Schedule struct {
	Events []Event
}

// ParseSchedule reads a chaos schedule from either a JSON array of
// events or NDJSON (one event object per line; blank lines skipped).
// Events are validated and stably sorted by offset.
func ParseSchedule(r io.Reader) (*Schedule, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var events []Event
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) == 0 {
		return &Schedule{}, nil
	}
	if trimmed[0] == '[' {
		if err := json.Unmarshal(trimmed, &events); err != nil {
			return nil, fmt.Errorf("loadgen: bad chaos schedule: %w", err)
		}
	} else {
		for i, line := range bytes.Split(trimmed, []byte("\n")) {
			line = bytes.TrimSpace(line)
			if len(line) == 0 {
				continue
			}
			var e Event
			if err := json.Unmarshal(line, &e); err != nil {
				return nil, fmt.Errorf("loadgen: chaos schedule line %d: %w", i+1, err)
			}
			events = append(events, e)
		}
	}
	for i, e := range events {
		if err := e.validate(); err != nil {
			return nil, fmt.Errorf("loadgen: chaos event %d: %w", i, err)
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return &Schedule{Events: events}, nil
}

// LoadScheduleFile reads a chaos schedule from disk.
func LoadScheduleFile(path string) (*Schedule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseSchedule(f)
}

// ExecutedEvent records one chaos event's execution for the report.
type ExecutedEvent struct {
	AtSeconds float64 `json:"atSeconds"`
	Action    string  `json:"action"`
	Provider  string  `json:"provider,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// run executes the schedule against the deployment, sleeping until each
// event's offset from start. It returns when every event has fired or
// ctx is cancelled (remaining events are dropped — a chaos script
// outliving the load has nothing left to disturb).
func (s *Schedule) run(ctx context.Context, start time.Time, c *client.Client) []ExecutedEvent {
	if s == nil || len(s.Events) == 0 {
		return nil
	}
	executed := make([]ExecutedEvent, 0, len(s.Events))
	for _, e := range s.Events {
		wait := time.Until(start.Add(time.Duration(e.At)))
		if wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				timer.Stop()
				return executed
			case <-timer.C:
			}
		}
		rec := ExecutedEvent{
			AtSeconds: time.Since(start).Seconds(),
			Action:    string(e.Action),
			Provider:  e.Provider,
		}
		if err := execute(ctx, c, e); err != nil {
			rec.Error = err.Error()
		}
		executed = append(executed, rec)
	}
	return executed
}

// execute maps one event onto the typed client's admin surface.
func execute(ctx context.Context, c *client.Client, e Event) error {
	switch e.Action {
	case ActionProviderDown:
		return c.SetProviderAvailable(ctx, e.Provider, false)
	case ActionProviderUp:
		return c.SetProviderAvailable(ctx, e.Provider, true)
	case ActionSetPricing:
		return c.SetProviderPricing(ctx, e.Provider, *e.Pricing)
	case ActionOptimize:
		// Dispatch-then-poll through the async jobs API: the chaos runner
		// observes the 202 contract end-to-end instead of holding one HTTP
		// request open across the whole pass.
		job, err := c.StartOptimize(ctx)
		if err != nil {
			return err
		}
		_, err = c.WaitForJob(ctx, job.ID, 0)
		return err
	case ActionRepair:
		policy := scalia.RepairActive
		if e.Policy == "wait" {
			policy = scalia.RepairWait
		}
		job, err := c.StartRepair(ctx, policy)
		if err != nil {
			return err
		}
		_, err = c.WaitForJob(ctx, job.ID, 0)
		return err
	case ActionAddProvider:
		return c.AddProvider(ctx, *e.Spec)
	case ActionRemoveProvider:
		return c.RemoveProvider(ctx, e.Provider)
	default:
		return fmt.Errorf("loadgen: unknown action %q", e.Action)
	}
}
