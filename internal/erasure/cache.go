package erasure

import (
	"fmt"
	"sync"
)

// Process-wide coder cache. A Coder is immutable and fully determined
// by (m, n), but building one Gauss-inverts an m x m Vandermonde block
// — O(m^3) table work that must never sit on a per-request path. The
// engine's read, write, repair and reoptimization paths all resolve
// their coder here, so the matrix build happens once per (m, n) for
// the life of the process.

// maxCachedCoders bounds the cache. (m, n) pairs come from placement
// rules, so a real deployment uses a handful; the bound only guards
// against unbounded growth under adversarial or fuzzed parameters.
const maxCachedCoders = 256

var (
	coderMu    sync.RWMutex
	coderCache = make(map[uint32]*Coder)
)

// Cached returns the shared coder for (m, n), building and caching it
// on first use. Parameters are validated exactly like New. The
// returned coder is immutable and safe for concurrent use; callers
// must not assume exclusive ownership.
func Cached(m, n int) (*Coder, error) {
	if m < 1 || n < m || n > fieldSize {
		return nil, fmt.Errorf("%w: m=%d n=%d", ErrInvalidParams, m, n)
	}
	key := uint32(m)<<16 | uint32(n)
	coderMu.RLock()
	c := coderCache[key]
	coderMu.RUnlock()
	if c != nil {
		return c, nil
	}
	c, err := New(m, n)
	if err != nil {
		return nil, err
	}
	coderMu.Lock()
	defer coderMu.Unlock()
	if prev := coderCache[key]; prev != nil {
		return prev, nil // lost the build race; keep the first coder
	}
	if len(coderCache) >= maxCachedCoders {
		// Epoch reset: coders are cheap to rebuild relative to tracking
		// per-entry recency, and a full cache means parameter churn no
		// real deployment exhibits.
		clear(coderCache)
	}
	coderCache[key] = c
	return c, nil
}
