package workload

import (
	"reflect"
	"testing"
)

// TestCompileOpsDeterministic pins the replayability contract: the same
// (scenario, seed, cap) always compiles to the identical sequence, and
// a different seed reorders the reads.
func TestCompileOpsDeterministic(t *testing.T) {
	s := Truncate(NewZipf(1), 3)
	a := CompileOps(s, 7, 2000)
	b := CompileOps(s, 7, 2000)
	if len(a) == 0 {
		t.Fatal("compiled zero ops")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical inputs compiled to different sequences")
	}
	c := CompileOps(s, 8, 2000)
	if len(c) != len(a) {
		t.Fatalf("seed changed op count: %d vs %d", len(c), len(a))
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds compiled to the identical read order")
	}
}

// TestCompileOpsNamespaceInvariant asserts every Get/Delete targets an
// object a preceding Put created and no earlier Delete removed — on a
// churn scenario, which exercises both creations and lifetime deletes.
func TestCompileOpsNamespaceInvariant(t *testing.T) {
	s := Truncate(NewChurn(3), 12)
	ops := CompileOps(s, 3, 0)
	if len(ops) == 0 {
		t.Fatal("compiled zero ops")
	}
	live := make(map[string]bool)
	puts, gets, deletes := 0, 0, 0
	for i, op := range ops {
		switch op.Kind {
		case OpPut:
			live[op.Object] = true
			puts++
		case OpGet:
			if !live[op.Object] {
				t.Fatalf("op %d: Get %q before Put (or after Delete)", i, op.Object)
			}
			gets++
		case OpDelete:
			if !live[op.Object] {
				t.Fatalf("op %d: Delete %q before Put (or double delete)", i, op.Object)
			}
			delete(live, op.Object)
			deletes++
		}
	}
	if puts == 0 || gets == 0 || deletes == 0 {
		t.Fatalf("churn should compile all three kinds, got puts=%d gets=%d deletes=%d",
			puts, gets, deletes)
	}
}

// TestCompileOpsCap asserts maxOps truncates and <=0 means the default.
func TestCompileOpsCap(t *testing.T) {
	s := NewZipf(1)
	capped := CompileOps(s, 1, 50)
	if len(capped) != 50 {
		t.Fatalf("cap 50 compiled %d ops", len(capped))
	}
	full := CompileOps(s, 1, 0)
	if len(full) > DefaultMaxOps {
		t.Fatalf("default cap exceeded: %d", len(full))
	}
	if len(full) <= 50 {
		t.Fatalf("full zipf week should compile far more than 50 ops, got %d", len(full))
	}
}
