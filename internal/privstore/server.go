// Package privstore implements Scalia's private storage resources
// (paper §III-E): a lightweight standalone web service exposing an
// authenticated S3-compatible REST interface over a local directory,
// plus the client engines use to address it through the same Store
// interface as public providers.
//
// Requests are authenticated by signing the request parameters with an
// HMAC of a private token registered with Scalia; a timestamp in the
// signed payload prevents replay attacks, exactly as the paper
// describes. Capacity never grows beyond the limit set in the
// resource's properties.
package privstore

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// MaxClockSkew bounds the accepted request-timestamp drift.
const MaxClockSkew = 5 * time.Minute

// Signature headers.
const (
	HeaderTimestamp = "X-Scalia-Timestamp"
	HeaderSignature = "X-Scalia-Signature"
)

// Sign computes the request signature: HMAC-SHA256 over
// "method|path|timestamp" with the private token.
func Sign(token []byte, method, path string, timestamp int64) string {
	mac := hmac.New(sha256.New, token)
	fmt.Fprintf(mac, "%s|%s|%d", method, path, timestamp)
	return hex.EncodeToString(mac.Sum(nil))
}

// Server is the private-resource web service. It stores each object as
// one file (hex-encoded key) under dir and enforces the capacity limit.
type Server struct {
	dir      string
	token    []byte
	capacity int64
	now      func() time.Time

	mu   sync.Mutex
	used int64
}

// NewServer creates a server over dir with the given private token and
// capacity limit in bytes (0 = unlimited). The directory is created if
// missing and existing content is inventoried.
func NewServer(dir string, token []byte, capacity int64) (*Server, error) {
	if len(token) == 0 {
		return nil, errors.New("privstore: empty private token")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("privstore: %w", err)
	}
	s := &Server{dir: dir, token: token, capacity: capacity, now: time.Now}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("privstore: %w", err)
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil && !e.IsDir() {
			s.used += info.Size()
		}
	}
	return s, nil
}

// UsedBytes returns the stored byte volume.
func (s *Server) UsedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// fileFor maps an object key to its backing file (hex encoding prevents
// path traversal).
func (s *Server) fileFor(key string) string {
	return filepath.Join(s.dir, hex.EncodeToString([]byte(key)))
}

func (s *Server) authenticate(r *http.Request) error {
	tsHeader := r.Header.Get(HeaderTimestamp)
	sig := r.Header.Get(HeaderSignature)
	if tsHeader == "" || sig == "" {
		return errors.New("missing signature headers")
	}
	ts, err := strconv.ParseInt(tsHeader, 10, 64)
	if err != nil {
		return errors.New("malformed timestamp")
	}
	drift := s.now().Sub(time.Unix(ts, 0))
	if drift < -MaxClockSkew || drift > MaxClockSkew {
		return errors.New("timestamp outside accepted window (replay protection)")
	}
	want := Sign(s.token, r.Method, r.URL.Path, ts)
	if !hmac.Equal([]byte(want), []byte(sig)) {
		return errors.New("bad signature")
	}
	return nil
}

// ServeHTTP implements http.Handler:
//
//	PUT    /objects/{key}  store
//	GET    /objects/{key}  fetch
//	DELETE /objects/{key}  delete
//	GET    /list?prefix=p  list keys
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if err := s.authenticate(r); err != nil {
		http.Error(w, err.Error(), http.StatusUnauthorized)
		return
	}
	switch {
	case r.URL.Path == "/list" && r.Method == http.MethodGet:
		s.list(w, r.URL.Query().Get("prefix"))
	case r.URL.Path == "/stats" && r.Method == http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]int64{"usedBytes": s.UsedBytes()}) //nolint:errcheck
	case strings.HasPrefix(r.URL.Path, "/objects/"):
		key := strings.TrimPrefix(r.URL.Path, "/objects/")
		if key == "" {
			http.Error(w, "key required", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodPut:
			s.put(w, r, key)
		case http.MethodGet:
			s.get(w, key)
		case http.MethodDelete:
			s.delete(w, key)
		default:
			http.Error(w, "unsupported method", http.StatusMethodNotAllowed)
		}
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

func (s *Server) put(w http.ResponseWriter, r *http.Request, key string) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	path := s.fileFor(key)
	var old int64
	if info, err := os.Stat(path); err == nil {
		old = info.Size()
	}
	s.mu.Lock()
	if s.capacity > 0 && s.used-old+int64(len(data)) > s.capacity {
		s.mu.Unlock()
		http.Error(w, "capacity exhausted", http.StatusInsufficientStorage)
		return
	}
	s.used += int64(len(data)) - old
	s.mu.Unlock()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		s.mu.Lock()
		s.used -= int64(len(data)) - old
		s.mu.Unlock()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) get(w http.ResponseWriter, key string) {
	data, err := os.ReadFile(s.fileFor(key))
	if err != nil {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write(data) //nolint:errcheck
}

func (s *Server) delete(w http.ResponseWriter, key string) {
	path := s.fileFor(key)
	info, err := os.Stat(path)
	if err != nil {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	if err := os.Remove(path); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.mu.Lock()
	s.used -= info.Size()
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) list(w http.ResponseWriter, prefix string) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	keys := []string{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		raw, err := hex.DecodeString(e.Name())
		if err != nil {
			continue
		}
		if key := string(raw); strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(keys) //nolint:errcheck
}
