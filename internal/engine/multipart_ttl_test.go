package engine

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// usedBytesTotal sums the registry's provider footprints — staged part
// chunks show up here until they are garbage-collected.
func usedBytesTotal(b *Broker) int64 {
	var total int64
	for _, s := range b.Registry().Snapshot() {
		total += s.UsedBytes()
	}
	return total
}

// TestSweepExpiredUploads drives the TTL sweep with a fake clock: an
// abandoned session with a staged part is evicted once idle past the
// TTL, its chunks are garbage-collected and the activeUploads gauge
// falls; fresh, in-flight and closed sessions are left alone.
func TestSweepExpiredUploads(t *testing.T) {
	b := newTestBroker(t, Config{StripeBytes: 1024})
	fakeNow := time.Unix(1_000_000, 0)
	b.now = func() time.Time { return fakeNow }
	e := b.Engine(0)
	ctx := context.Background()

	up, err := e.CreateUpload(ctx, "mp", "abandoned", 2048, PutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 2048)
	if _, err := e.UploadPart(ctx, up.UploadID, 1, bytes.NewReader(payload), 2048); err != nil {
		t.Fatal(err)
	}
	if used := usedBytesTotal(b); used == 0 {
		t.Fatal("staged part left no provider footprint")
	}
	if b.activeUploads() != 1 {
		t.Fatalf("activeUploads = %d, want 1", b.activeUploads())
	}

	// Young sessions survive the sweep.
	if n := b.SweepExpiredUploads(time.Hour); n != 0 {
		t.Fatalf("fresh session evicted: %d", n)
	}
	// A disabled TTL never evicts.
	fakeNow = fakeNow.Add(48 * time.Hour)
	if n := b.SweepExpiredUploads(0); n != 0 {
		t.Fatalf("ttl=0 must disable the sweep, evicted %d", n)
	}

	// An in-flight part is activity, whatever the clock says.
	s, err := b.getUpload(up.UploadID)
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.inflight[2] = true
	s.mu.Unlock()
	if n := b.SweepExpiredUploads(time.Hour); n != 0 {
		t.Fatalf("session with a streaming part evicted: %d", n)
	}
	s.mu.Lock()
	delete(s.inflight, 2)
	s.mu.Unlock()

	// Idle past the TTL: evicted, gauge down, chunks GC'd, session 404s.
	if n := b.SweepExpiredUploads(time.Hour); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	if b.activeUploads() != 0 {
		t.Fatalf("activeUploads = %d after sweep, want 0", b.activeUploads())
	}
	if used := usedBytesTotal(b); used != 0 {
		t.Fatalf("staged chunks not garbage-collected: %d bytes remain", used)
	}
	if _, _, err := e.ListParts(ctx, up.UploadID); !errors.Is(err, ErrUploadNotFound) {
		t.Fatalf("swept session still resolvable: %v", err)
	}
	if _, err := e.UploadPart(ctx, up.UploadID, 1, bytes.NewReader(payload), 2048); !errors.Is(err, ErrUploadNotFound) {
		t.Fatalf("part upload to a swept session: %v", err)
	}
}

// TestSweepRespectsActivity asserts that part uploads and ListParts
// refresh the idle clock, so a slow-but-live resumable upload is never
// evicted mid-flight.
func TestSweepRespectsActivity(t *testing.T) {
	b := newTestBroker(t, Config{StripeBytes: 1024})
	fakeNow := time.Unix(1_000_000, 0)
	b.now = func() time.Time { return fakeNow }
	e := b.Engine(0)
	ctx := context.Background()

	up, err := e.CreateUpload(ctx, "mp", "slow", 4096, PutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("y"), 1024)
	for part := 1; part <= 3; part++ {
		// 40 minutes between parts, TTL one hour: each upload must
		// reset the clock or the session dies between parts.
		fakeNow = fakeNow.Add(40 * time.Minute)
		if n := b.SweepExpiredUploads(time.Hour); n != 0 {
			t.Fatalf("live session evicted before part %d", part)
		}
		if _, err := e.UploadPart(ctx, up.UploadID, part, bytes.NewReader(payload), 1024); err != nil {
			t.Fatal(err)
		}
	}
	// A resume probe (ListParts) also counts as activity.
	fakeNow = fakeNow.Add(40 * time.Minute)
	if _, _, err := e.ListParts(ctx, up.UploadID); err != nil {
		t.Fatal(err)
	}
	fakeNow = fakeNow.Add(40 * time.Minute)
	if n := b.SweepExpiredUploads(time.Hour); n != 0 {
		t.Fatal("probed session evicted")
	}
	// Silence for the full TTL finally evicts it.
	fakeNow = fakeNow.Add(time.Hour)
	if n := b.SweepExpiredUploads(time.Hour); n != 1 {
		t.Fatalf("idle session not evicted: %d", n)
	}
}
