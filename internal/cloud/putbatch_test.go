package cloud

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

func batchStore(capacity, maxChunk int64) *BlobStore {
	return NewBlobStore(Spec{
		Name: "B", Durability: 0.99999, Availability: 0.999,
		Zones: []Zone{ZoneUS}, CapacityBytes: capacity, MaxChunkBytes: maxChunk,
	})
}

func TestPutBatchAllOrNothing(t *testing.T) {
	ctx := context.Background()
	s := batchStore(100, 0)
	if err := s.Put(ctx, "keep", bytes.Repeat([]byte{1}, 40)); err != nil {
		t.Fatal(err)
	}
	// 40 used + 70 batched > 100 capacity: the whole batch must bounce
	// with nothing landed, even though item "a" alone would fit.
	err := s.PutBatch(ctx, []BatchItem{
		{Key: "a", Data: bytes.Repeat([]byte{2}, 30)},
		{Key: "b", Data: bytes.Repeat([]byte{3}, 40)},
	})
	if !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("over-capacity batch = %v", err)
	}
	if s.ObjectCount() != 1 || s.UsedBytes() != 40 {
		t.Fatalf("rejected batch landed writes: %d objects, %d bytes", s.ObjectCount(), s.UsedBytes())
	}
	// Same for a chunk-size violation buried mid-batch.
	s2 := batchStore(0, 10)
	err = s2.PutBatch(ctx, []BatchItem{
		{Key: "ok", Data: []byte("small")},
		{Key: "big", Data: bytes.Repeat([]byte{4}, 11)},
	})
	if !errors.Is(err, ErrTooLarge) || s2.ObjectCount() != 0 {
		t.Fatalf("oversized batch = %v, %d objects", err, s2.ObjectCount())
	}
	// Empty keys are rejected like single Puts.
	if err := s2.PutBatch(ctx, []BatchItem{{Key: "", Data: []byte("x")}}); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestPutBatchUnavailable(t *testing.T) {
	ctx := context.Background()
	s := batchStore(0, 0)
	s.SetAvailable(false)
	err := s.PutBatch(ctx, []BatchItem{{Key: "a", Data: []byte("x")}})
	if !errors.Is(err, ErrUnavailable) || s.ObjectCount() != 0 {
		t.Fatalf("down store batch = %v, %d objects", err, s.ObjectCount())
	}
}

// TestPutBatchMeteringMatchesPuts: one batched round-trip must bill
// exactly like the equivalent sequence of single Puts, including the
// used-bytes adjustment when the batch overwrites an existing object.
func TestPutBatchMeteringMatchesPuts(t *testing.T) {
	ctx := context.Background()
	items := []BatchItem{
		{Key: "a", Data: bytes.Repeat([]byte{1}, 1000)},
		{Key: "b", Data: bytes.Repeat([]byte{2}, 500)},
		{Key: "a", Data: bytes.Repeat([]byte{3}, 200)}, // overwrite within the batch
	}
	batched, single := batchStore(0, 0), batchStore(0, 0)
	seed := bytes.Repeat([]byte{9}, 300)
	for _, s := range []*BlobStore{batched, single} {
		if err := s.Put(ctx, "b", seed); err != nil { // pre-existing object overwritten by the batch
			t.Fatal(err)
		}
	}
	if err := batched.PutBatch(ctx, items); err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := single.Put(ctx, it.Key, it.Data); err != nil {
			t.Fatal(err)
		}
	}
	if batched.UsedBytes() != single.UsedBytes() || batched.ObjectCount() != single.ObjectCount() {
		t.Fatalf("state diverged: batch %d/%d bytes/objects, puts %d/%d",
			batched.UsedBytes(), batched.ObjectCount(), single.UsedBytes(), single.ObjectCount())
	}
	if batched.UsedBytes() != 700 { // a=200 (final) + b=500
		t.Fatalf("used = %d, want 700", batched.UsedBytes())
	}
	if bu, su := batched.Meter().Snapshot(), single.Meter().Snapshot(); bu != su {
		t.Fatalf("billing diverged: batch %+v, puts %+v", bu, su)
	}
	got, err := batched.Get(ctx, "a")
	if err != nil || len(got) != 200 || got[0] != 3 {
		t.Fatalf("in-batch overwrite: %d bytes, err %v", len(got), err)
	}
}
