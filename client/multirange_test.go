package client_test

import (
	"bytes"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"scalia"
	"scalia/client"
)

// TestClientGetRanges round-trips a multi-range GET through the
// gateway's multipart/byteranges body: every window comes back with its
// resolved offset and exact bytes, unsatisfiable windows are dropped,
// and all-unsatisfiable maps to the range sentinel.
func TestClientGetRanges(t *testing.T) {
	_, c := newRemote(t, scalia.Options{StripeBytes: 2048, CacheBytes: 1 << 20})

	payload := make([]byte, 12*1024+7)
	rand.New(rand.NewSource(23)).Read(payload)
	if _, err := c.Put(ctx, "big", "blob", payload); err != nil {
		t.Fatal(err)
	}
	size := int64(len(payload))

	parts, meta, err := c.GetRanges(ctx, "big", "blob", []client.ByteRange{
		{Offset: 100, Length: 200},
		{Offset: 5000, Length: 1024},
		{Offset: size - 50, Length: -1}, // open-ended tail
	})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Size != size {
		t.Fatalf("meta = %+v", meta)
	}
	if len(parts) != 3 {
		t.Fatalf("got %d parts, want 3", len(parts))
	}
	want := []struct {
		offset int64
		data   []byte
	}{
		{100, payload[100:300]},
		{5000, payload[5000:6024]},
		{size - 50, payload[size-50:]},
	}
	for i, w := range want {
		if parts[i].Offset != w.offset || !bytes.Equal(parts[i].Data, w.data) {
			t.Fatalf("part %d = offset %d, %d bytes; want offset %d, %d bytes",
				i, parts[i].Offset, len(parts[i].Data), w.offset, len(w.data))
		}
	}

	// A single range degrades to a plain 206 — still one part.
	parts, _, err = c.GetRanges(ctx, "big", "blob", []client.ByteRange{{Offset: 10, Length: 20}})
	if err != nil || len(parts) != 1 || parts[0].Offset != 10 || !bytes.Equal(parts[0].Data, payload[10:30]) {
		t.Fatalf("single-range = %v (%d parts)", err, len(parts))
	}

	// Mixed satisfiable/unsatisfiable: the gateway serves the subset.
	parts, _, err = c.GetRanges(ctx, "big", "blob", []client.ByteRange{
		{Offset: 0, Length: 10},
		{Offset: size + 100, Length: 10},
	})
	if err != nil || len(parts) != 1 || !bytes.Equal(parts[0].Data, payload[:10]) {
		t.Fatalf("subset serving = %v (%d parts)", err, len(parts))
	}

	// Entirely unsatisfiable: the sentinel round-trips the wire.
	_, _, err = c.GetRanges(ctx, "big", "blob", []client.ByteRange{
		{Offset: size, Length: 10},
		{Offset: size + 5, Length: -1},
	})
	if !errors.Is(err, scalia.ErrRangeNotSatisfiable) {
		t.Fatalf("all-unsatisfiable = %v, want ErrRangeNotSatisfiable", err)
	}

	// Windows the wire form cannot express fail fast.
	for _, bad := range [][]client.ByteRange{
		nil,
		{{Offset: -1, Length: 5}},
		{{Offset: 0, Length: 0}},
		{{Offset: 0, Length: -2}},
	} {
		if _, _, err := c.GetRanges(ctx, "big", "blob", bad); !errors.Is(err, scalia.ErrInvalidArgument) {
			t.Fatalf("GetRanges(%v) = %v, want ErrInvalidArgument", bad, err)
		}
	}
}

// TestClientGetRangesFullBodyFallback: a server that ignores the Range
// header and ships the whole 200 body still yields every requested
// window, carved client-side.
func TestClientGetRangesFullBodyFallback(t *testing.T) {
	payload := []byte("0123456789abcdefghij")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write(payload) //nolint:errcheck
	}))
	t.Cleanup(ts.Close)
	c := client.New(ts.URL, client.WithHTTPClient(ts.Client()))

	parts, _, err := c.GetRanges(ctx, "c", "k", []client.ByteRange{
		{Offset: 5, Length: 4},
		{Offset: 15, Length: -1},
		{Offset: 100, Length: 5}, // past the end: dropped
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 || string(parts[0].Data) != "5678" || string(parts[1].Data) != "fghij" {
		t.Fatalf("fallback parts = %v", parts)
	}
}

// TestClientChaosAdmin drives the scripted-chaos admin surface over the
// wire: availability flips take real effect (reads fall back, the
// provider market shrinks), pricing changes land in the market snapshot
// and echo an advancing epoch, and unknown providers surface the typed
// unknown-provider sentinel.
func TestClientChaosAdmin(t *testing.T) {
	deployment, c := newRemote(t, scalia.Options{})

	mut, err := c.UpdateProviderAvailability(ctx, "S3(l)", false)
	if err != nil {
		t.Fatal(err)
	}
	if mut.Provider != "S3(l)" || mut.Field != "availability" || mut.Epoch == 0 ||
		mut.Available == nil || *mut.Available {
		t.Fatalf("availability mutation echo = %+v", mut)
	}
	providers, err := c.Providers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	prevEpoch := mut.Epoch
	var s3lUp = true
	for _, p := range providers {
		if p.Name == "S3(l)" {
			s3lUp = p.Available
		}
	}
	if s3lUp {
		t.Fatal("outage injected over the wire did not land")
	}
	if err := c.SetProviderAvailable(ctx, "S3(l)", true); err != nil {
		t.Fatal(err)
	}

	newPrices := scalia.Pricing{StorageGBMonth: 0.9, BandwidthInGB: 0.2, BandwidthOutGB: 0.4, OpsPer1000: 0.05}
	pmut, err := c.UpdateProviderPricing(ctx, "Azu", newPrices)
	if err != nil {
		t.Fatal(err)
	}
	if pmut.Field != "pricing" || pmut.Epoch <= prevEpoch ||
		pmut.Pricing == nil || *pmut.Pricing != newPrices {
		t.Fatalf("pricing mutation echo = %+v (prev epoch %d)", pmut, prevEpoch)
	}
	// The embedded facade sees the same registry: the new sheet is live.
	found := false
	for _, spec := range deployment.Broker().Registry().Specs() {
		if spec.Name == "Azu" {
			found = true
			if spec.Pricing != newPrices {
				t.Fatalf("pricing not applied: %+v", spec.Pricing)
			}
		}
	}
	if !found {
		t.Fatal("provider missing")
	}

	for _, call := range []error{
		c.SetProviderAvailable(ctx, "nope", false),
		c.SetProviderPricing(ctx, "nope", newPrices),
	} {
		if !errors.Is(call, scalia.ErrUnknownProvider) {
			t.Fatalf("unknown provider = %v, want unknown-provider sentinel", call)
		}
	}
}
