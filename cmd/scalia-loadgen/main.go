// Command scalia-loadgen drives a live Scalia deployment with a
// registered workload scenario (or an imported NDJSON trace) over the
// real HTTP wire protocol, optionally executing a replayable chaos
// schedule (provider outages, price changes, repair/optimize triggers)
// mid-run, and writes a BENCH_loadgen_*.json report: per-op latency
// quantiles, typed error rates, achieved vs offered rate, and the
// deployment's /v1/stats delta.
//
// Typical invocations:
//
//	scalia-loadgen -list
//	scalia-loadgen -addr http://127.0.0.1:8080 -workload zipf -duration 30s -rate 100
//	scalia-loadgen -spawn -workload churn -chaos ci/chaos-outage.json -duration 30s
//	scalia-loadgen -workload zipf -seed 7 -trace-out run.ndjson   # replayable op trace
//
// The chaos schedule is a JSON array (or NDJSON stream) of timestamped
// events; see internal/loadgen and EXPERIMENTS.md for the format.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"scalia"
	"scalia/client"
	"scalia/internal/loadgen"
	"scalia/internal/workload"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "deployment base URL")
	spawn := flag.Bool("spawn", false,
		"boot an in-process deployment instead of targeting -addr")
	workloadName := flag.String("workload", "zipf", "registered scenario name (see -list)")
	tracePath := flag.String("trace", "", "NDJSON workload trace to replay instead of -workload")
	list := flag.Bool("list", false, "list registered scenarios and exit")
	chaosPath := flag.String("chaos", "", "chaos schedule file (JSON array or NDJSON)")
	workers := flag.Int("workers", loadgen.DefaultWorkers, "executor pool size")
	duration := flag.Duration("duration", 0,
		"run length (0 = exactly one pass over the compiled ops)")
	rate := flag.Float64("rate", loadgen.DefaultRate, "offered op rate per second")
	seed := flag.Uint64("seed", 1, "op-shuffle seed (same seed = same op sequence)")
	maxOps := flag.Int("ops", workload.DefaultMaxOps, "cap on compiled ops per pass")
	maxObjectBytes := flag.Int64("max-object-bytes", loadgen.DefaultMaxObjectBytes,
		"clamp scenario object sizes (negative = unclamped)")
	out := flag.String("out", "", "report path (default BENCH_loadgen_<scenario>.json)")
	traceOut := flag.String("trace-out", "", "write the dispatched op sequence as NDJSON")
	maxErrorRate := flag.Float64("max-error-rate", -1,
		"exit non-zero when the paced error rate exceeds this fraction (negative = no gate)")
	container := flag.String("container", loadgen.DefaultContainer, "object container for the run")
	flag.Parse()

	if *list {
		names := workload.Names()
		sort.Strings(names)
		for _, n := range names {
			e, _ := workload.Describe(n)
			fmt.Printf("%-16s %s\n", n, e.Desc)
		}
		return
	}

	scenario, err := buildScenario(*workloadName, *tracePath)
	if err != nil {
		log.Fatal(err)
	}

	var chaos *loadgen.Schedule
	if *chaosPath != "" {
		if chaos, err = loadgen.LoadScheduleFile(*chaosPath); err != nil {
			log.Fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	base := *addr
	if *spawn {
		deployment, err := scalia.New(scalia.Options{})
		if err != nil {
			log.Fatal(err)
		}
		defer deployment.Close()
		ts := httptest.NewServer(deployment.NewGateway())
		defer ts.Close()
		base = ts.URL
		log.Printf("spawned in-process deployment at %s", base)
	}
	c := client.New(base)

	if err := waitReady(ctx, c); err != nil {
		log.Fatalf("deployment at %s not ready: %v", base, err)
	}

	var traceFile *os.File
	cfg := loadgen.Config{
		Client:         c,
		Scenario:       scenario,
		Container:      *container,
		Seed:           *seed,
		Workers:        *workers,
		Rate:           *rate,
		Duration:       *duration,
		MaxOps:         *maxOps,
		MaxObjectBytes: *maxObjectBytes,
		Chaos:          chaos,
	}
	if *traceOut != "" {
		if traceFile, err = os.Create(*traceOut); err != nil {
			log.Fatal(err)
		}
		defer traceFile.Close()
		cfg.OpTrace = traceFile
	}

	log.Printf("loadgen: scenario=%s seed=%d workers=%d rate=%.1f/s duration=%s chaos-events=%d",
		scenario.Name(), *seed, *workers, *rate, duration, chaosEvents(chaos))
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(rep.Summary())

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_loadgen_%s.json", scenario.Name())
	}
	if err := rep.WriteFile(path); err != nil {
		log.Fatal(err)
	}
	log.Printf("report written to %s", path)

	if *maxErrorRate >= 0 && rep.ErrorRate > *maxErrorRate {
		log.Fatalf("error rate %.4f exceeds gate %.4f (errors by code: %v)",
			rep.ErrorRate, *maxErrorRate, rep.ErrorsByCode)
	}
}

func buildScenario(name, tracePath string) (workload.Scenario, error) {
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.Import(f)
	}
	return workload.New(name)
}

func chaosEvents(s *loadgen.Schedule) int {
	if s == nil {
		return 0
	}
	return len(s.Events)
}

// waitReady polls the providers endpoint until the gateway answers, so
// the generator can be started alongside a still-booting server.
func waitReady(ctx context.Context, c *client.Client) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		pingCtx, cancel := context.WithTimeout(ctx, time.Second)
		_, err := c.Providers(pingCtx)
		cancel()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			return err
		}
		time.Sleep(250 * time.Millisecond)
	}
}
