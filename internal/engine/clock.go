// Package engine implements Scalia's engine layer (paper §III-A): the
// stateless broker engines that expose an S3-like put/get/list/delete
// API, split objects into erasure-coded chunks, place them at the best
// provider set, reconstruct objects on reads, run the periodic
// trend-gated placement optimization with leader election (Fig. 7), and
// handle provider failures with postponed deletes and active repair
// (§III-D3, §IV-E).
package engine

import (
	"sync/atomic"
	"time"
)

// Clock abstracts time so the simulator can drive sampling periods
// deterministically while the HTTP server uses wall time.
type Clock interface {
	// Period returns the current sampling-period index.
	Period() int64
	// Timestamp returns a monotone timestamp for MVCC resolution.
	Timestamp() int64
}

// SimClock is a manually advanced clock for simulations and tests.
type SimClock struct {
	period int64
	stamp  int64
}

// NewSimClock returns a clock at period 0.
func NewSimClock() *SimClock { return &SimClock{} }

// Period implements Clock.
func (c *SimClock) Period() int64 { return atomic.LoadInt64(&c.period) }

// Timestamp implements Clock; it is strictly monotone across calls.
func (c *SimClock) Timestamp() int64 { return atomic.AddInt64(&c.stamp, 1) }

// Advance moves the clock forward by n periods.
func (c *SimClock) Advance(n int64) { atomic.AddInt64(&c.period, n) }

// SetPeriod jumps to an absolute period.
func (c *SimClock) SetPeriod(p int64) { atomic.StoreInt64(&c.period, p) }

// WallClock derives sampling periods from real time.
type WallClock struct {
	epoch       time.Time
	periodHours float64
}

// NewWallClock returns a wall clock with the given sampling period.
func NewWallClock(periodHours float64) *WallClock {
	if periodHours <= 0 {
		periodHours = 1
	}
	return &WallClock{epoch: time.Now(), periodHours: periodHours}
}

// Period implements Clock.
func (c *WallClock) Period() int64 {
	return int64(time.Since(c.epoch).Hours() / c.periodHours)
}

// Timestamp implements Clock (NTP-synchronized engines in the paper).
func (c *WallClock) Timestamp() int64 { return time.Now().UnixNano() }
