// Command scalia-sim regenerates the paper's tables and figures from
// the simulator. Each -experiment value corresponds to one artifact of
// the evaluation section (see DESIGN.md for the index).
package main

import (
	"flag"
	"fmt"
	"os"

	"scalia/internal/cloud"
	"scalia/internal/core"
	"scalia/internal/sim"
)

func main() {
	experiment := flag.String("experiment", "all",
		"one of: rules, providers, lifetime, trend-hourly, trend-daily, "+
			"slashdot, gallery, sets, addprovider, repair, all")
	every := flag.Int("every", 6, "print one resource/price row every N periods")
	flag.Parse()

	runners := map[string]func(int) error{
		"rules":        runRules,
		"providers":    runProviders,
		"lifetime":     runLifetime,
		"trend-hourly": runTrendHourly,
		"trend-daily":  runTrendDaily,
		"slashdot":     runSlashdot,
		"gallery":      runGallery,
		"sets":         runSets,
		"addprovider":  runAddProvider,
		"repair":       runRepair,
	}
	order := []string{"rules", "providers", "lifetime", "trend-hourly", "trend-daily",
		"sets", "slashdot", "gallery", "addprovider", "repair"}

	if *experiment == "all" {
		for _, name := range order {
			fmt.Printf("==== %s ====\n", name)
			if err := runners[name](*every); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}
	run, ok := runners[*experiment]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	if err := run(*every); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func runRules(int) error {
	fmt.Println("Fig. 2 — example storage rules:")
	fmt.Printf("%-8s %12s %10s %-8s %8s %4s\n", "name", "durability", "avail.", "zones", "lock-in", "N")
	for _, r := range core.PaperRules() {
		fmt.Printf("%-8s %12.7f %10.5f %-8v %8.2f %4d\n",
			r.Name, r.Durability, r.Availability, r.Zones, r.LockIn, r.MinProviders())
	}
	return nil
}

func runProviders(int) error {
	fmt.Println("Fig. 3 — provider profiles (USD/GB, USD/1000 ops):")
	fmt.Printf("%-10s %14s %8s %16s %8s %8s %8s %6s\n",
		"name", "durability", "avail.", "zones", "storage", "bdw-in", "bdw-out", "ops")
	for _, s := range cloud.PaperProviders() {
		fmt.Printf("%-10s %14.11f %8.3f %16v %8.3f %8.2f %8.2f %6.2f\n",
			s.Name, s.Durability, s.Availability, s.Zones,
			s.Pricing.StorageGBMonth, s.Pricing.BandwidthInGB,
			s.Pricing.BandwidthOutGB, s.Pricing.OpsPer1000)
	}
	return nil
}

func runLifetime(int) error {
	fmt.Println("Fig. 5 — class lifetime distribution and time left to live:")
	_, out := sim.LifetimeFigure()
	fmt.Print(out)
	return nil
}

func runTrendHourly(int) error {
	fmt.Println("Fig. 8 — trend detection (ma 3, limit 0.1, s 1 h, 7 days):")
	fmt.Print(sim.FormatTrend(sim.TrendHourly()))
	return nil
}

func runTrendDaily(int) error {
	fmt.Println("Fig. 9 — trend detection (ma 3, limit 0.1, s 1 d, 3 months):")
	fmt.Print(sim.FormatTrend(sim.TrendDaily()))
	return nil
}

func runSets(int) error {
	fmt.Println("Fig. 13 — provider sets:")
	for _, s := range sim.StaticSets() {
		fmt.Printf("%2d  %s\n", s.Index, s.Label())
	}
	fmt.Printf("%2d  Scalia\n", sim.ScaliaIndex)
	return nil
}

func runSlashdot(every int) error {
	res, err := sim.SlashdotExperiment()
	if err != nil {
		return err
	}
	fmt.Println("Fig. 12 — Slashdot scenario, total resources:")
	fmt.Print(sim.FormatResources(res, every))
	fmt.Println("\nScalia placement changes:")
	fmt.Print(sim.FormatChanges(res))
	fmt.Println("\nFig. 14 — Slashdot scenario, over-cost per provider set:")
	fmt.Print(sim.FormatOverCost(res))
	return nil
}

func runGallery(every int) error {
	res, err := sim.GalleryExperiment()
	if err != nil {
		return err
	}
	fmt.Println("Fig. 15 — gallery scenario, total resources:")
	fmt.Print(sim.FormatResources(res, every))
	fmt.Println("\nFig. 16 — gallery scenario, over-cost per provider set:")
	fmt.Print(sim.FormatOverCost(res))
	return nil
}

func runAddProvider(every int) error {
	res, err := sim.AddProviderExperiment()
	if err != nil {
		return err
	}
	fmt.Println("Fig. 17 — provider addition (CheapStor at hour 400), resources:")
	fmt.Print(sim.FormatResources(res, every*4))
	fmt.Println("\nScalia placement changes (first 10):")
	for i, ch := range res.Changes {
		if i >= 10 {
			fmt.Printf("... and %d more\n", len(res.Changes)-10)
			break
		}
		fmt.Printf("hour %4d  %-18s %s -> %s (%s)\n", ch.Period, ch.Object, ch.From, ch.To, ch.Reason)
	}
	fmt.Println("\nOver-cost per provider set:")
	fmt.Print(sim.FormatOverCost(res))
	return nil
}

func runRepair(every int) error {
	res, static, err := sim.RepairExperiment()
	if err != nil {
		return err
	}
	fmt.Println("Fig. 18 — active repair: cumulative price, Scalia vs fixed set:")
	fmt.Print(sim.FormatCumulative(res.CumulativeScalia, static, sim.RepairStaticSet.Label(), every))
	fmt.Println("\nScalia placement changes:")
	fmt.Print(sim.FormatChanges(res))
	return nil
}
