package erasure

import "sync"

// Scratch pooling for the coding paths. Every encoded stripe needs an
// n-chunk backing array plus the chunk-slice header; Verify needs a
// parity-recompute buffer per span; Reconstruct needs a decode-matrix
// workspace. At production stripe sizes the allocator — not the Galois
// arithmetic — shows up first in BrokerPut's allocs/op, so all of that
// is recycled here. The pools store pointer boxes and every Get/Put
// cycle reuses the same box, so the steady-state pooled encode path
// performs zero heap allocations. Buffers of mixed deployments
// converge to the largest stripe in use, which is bounded by the
// deployment's configured stripe size.

// encodeScratch carries one pooled encode buffer set: the chunk
// backing array and the chunk-slice headers.
type encodeScratch struct {
	backing []byte
	chunks  [][]byte
}

var (
	// encScratchPool holds filled encodeScratch boxes (buffers attached);
	// shellPool holds empty boxes. EncodePooled moves a box from the
	// first to the second, ReleaseChunks moves it back — boxes circulate
	// and are never re-allocated in steady state.
	encScratchPool = sync.Pool{New: func() any { return new(encodeScratch) }}
	shellPool      = sync.Pool{New: func() any { return new(encodeScratch) }}

	// scratchPool recycles span-sized work buffers (Verify's parity
	// recompute). Get and Put exchange the same *[]byte box.
	scratchPool = sync.Pool{New: func() any { b := []byte(nil); return &b }}

	// jobsPool recycles the kernel-job slices built per encode call.
	jobsPool = sync.Pool{New: func() any { j := []rsJob(nil); return &j }}

	// reconScratchPool recycles Reconstruct's decode-matrix workspace.
	reconScratchPool = sync.Pool{New: func() any { return &reconScratch{} }}
)

// EncodePooled is Encode with the chunk array and its backing drawn
// from an internal pool instead of the garbage collector. The caller
// owns every returned chunk until it hands the whole slice back via
// ReleaseChunks; after that the memory is recycled, so no chunk may be
// retained past the release (backends that keep payload references
// beyond Put's return cannot be used with the pooled path — the
// in-tree backends all copy or serialize before returning).
func (c *Coder) EncodePooled(data []byte) ([][]byte, error) {
	sc := encScratchPool.Get().(*encodeScratch)
	chunks, err := c.encode(data, sc.backing, sc.chunks)
	sc.backing, sc.chunks = nil, nil
	shellPool.Put(sc)
	return chunks, err
}

// ReleaseChunks returns a chunk set obtained from EncodePooled to the
// pool. The chunks share one backing array whose full capacity is
// reachable through chunk 0, so the set is recycled wholesale.
func ReleaseChunks(chunks [][]byte) {
	if len(chunks) == 0 {
		return
	}
	sc := shellPool.Get().(*encodeScratch)
	sc.backing = chunks[0][:0]
	for i := range chunks {
		chunks[i] = nil
	}
	sc.chunks = chunks[:0]
	encScratchPool.Put(sc)
}

// getScratch returns a pooled buffer of length n. Contents are dirty:
// callers must fully overwrite (the kernels' assign-first convention
// makes that free). The buffer must not escape the call; hand the box
// back with putScratch.
func getScratch(n int) *[]byte {
	bp := scratchPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putScratch(bp *[]byte) { scratchPool.Put(bp) }

// getJobs draws a zero-length kernel-job slice box from the pool.
func getJobs() *[]rsJob {
	jb := jobsPool.Get().(*[]rsJob)
	*jb = (*jb)[:0]
	return jb
}

// putJobs drops the chunk references the jobs hold (so pooled headers
// never pin stripes) and returns the box.
func putJobs(jb *[]rsJob) {
	for i := range *jb {
		(*jb)[i] = rsJob{}
	}
	jobsPool.Put(jb)
}

// reconScratch is Reconstruct's per-call workspace: the decode
// sub-matrix backing, the surviving-chunk references, and the kernel
// job list. Pooling it keeps the slow path's fixed overhead off the
// allocator; the reconstructed chunks themselves are NOT pooled — they
// are handed to the caller.
type reconScratch struct {
	matData   []byte
	chunkRefs [][]byte
	jobs      []rsJob
}

// release drops chunk references (so the pool never pins stripe
// buffers) and returns the scratch to the pool.
func (sc *reconScratch) release() {
	for i := range sc.chunkRefs {
		sc.chunkRefs[i] = nil
	}
	for i := range sc.jobs {
		sc.jobs[i] = rsJob{}
	}
	sc.jobs = sc.jobs[:0]
	reconScratchPool.Put(sc)
}
