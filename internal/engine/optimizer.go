package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scalia/internal/cloud"
	"scalia/internal/core"
	"scalia/internal/erasure"
	"scalia/internal/obs"
	"scalia/internal/stats"
	"scalia/internal/trend"
)

// OptimizeReport summarizes one periodic optimization procedure
// (paper Fig. 7).
type OptimizeReport struct {
	Leader       string
	Scanned      int // |A|: objects accessed since the last round
	TrendChanged int // objects whose access pattern changed
	Recomputed   int // placements recomputed (Algorithm 1 runs)
	Migrated     int // objects actually moved
	MigrationUSD float64
	// Evaluated counts candidate provider sets examined across every
	// placement search of the round (the Fig. 13 ablation metric),
	// including decision-period coupling probes.
	Evaluated int
	// PlannerHits/PlannerMisses count prepared-search cache lookups
	// served from (hit) or built into (miss) the shared planner during
	// the round. A steady market yields misses only on the first round
	// per rule.
	PlannerHits   uint64
	PlannerMisses uint64
}

// ErrNoLeader is returned when no engine is alive to lead a round.
var ErrNoLeader = errors.New("engine: no alive engine for leader election")

// Optimize runs one optimization procedure: a leader elected among all
// engines retrieves the set A of objects accessed since the last round,
// splits it evenly across engines, and each engine recomputes placement
// only for objects whose access trend changed (§III-A3). Migration
// happens only when the projected savings over the decision period
// exceed the migration cost. Cancelling ctx stops the shard scans;
// objects not yet examined are picked up by a later round.
func (b *Broker) Optimize(ctx context.Context) (OptimizeReport, error) {
	defer b.observeStage(obs.TraceFrom(ctx), "optimize", time.Now())
	leader := b.electLeader()
	if leader == nil {
		return OptimizeReport{}, ErrNoLeader
	}
	b.FlushStats()

	b.mu.Lock()
	since := b.lastOpt
	now := b.clock.Period()
	b.lastOpt = now
	b.mu.Unlock()

	accessed := b.statsDB.AccessedSince(since)
	report := OptimizeReport{Leader: leader.id, Scanned: len(accessed)}
	if len(accessed) == 0 {
		// Quiet round: nothing to shard, skip the fan-out machinery (the
		// common case for a broker ticking every sampling period).
		b.recordOptimize(report)
		return report, nil
	}
	planner0 := b.planner.Stats()

	// Fan out over alive engines (step 3-4 of Fig. 7).
	alive := b.aliveEngines()
	shards := shardObjects(accessed, len(alive))

	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, e := range alive {
		if len(shards[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(e *Engine, objs []string) {
			defer wg.Done()
			local := e.optimizeShard(ctx, objs, now, false)
			mu.Lock()
			report.TrendChanged += local.TrendChanged
			report.Recomputed += local.Recomputed
			report.Migrated += local.Migrated
			report.MigrationUSD += local.MigrationUSD
			report.Evaluated += local.Evaluated
			mu.Unlock()
		}(e, shards[i])
	}
	wg.Wait()
	planner1 := b.planner.Stats()
	report.PlannerHits = planner1.Hits - planner0.Hits
	report.PlannerMisses = planner1.Misses - planner0.Misses
	b.recordOptimize(report)
	return report, ctx.Err()
}

// aliveEngines returns the engines participating in fan-out work.
func (b *Broker) aliveEngines() []*Engine {
	var alive []*Engine
	for _, e := range b.engines {
		if e.Alive() {
			alive = append(alive, e)
		}
	}
	return alive
}

// shardObjects splits the object list round-robin across n workers.
func shardObjects(objs []string, n int) [][]string {
	shards := make([][]string, n)
	for i, obj := range objs {
		shards[i%n] = append(shards[i%n], obj)
	}
	return shards
}

// OptimizeFullScan recomputes every known object's placement without
// trend gating — the full-table-scan baseline the paper rejects as
// unscalable; kept for the ablation benchmark.
func (b *Broker) OptimizeFullScan(ctx context.Context) (OptimizeReport, error) {
	leader := b.electLeader()
	if leader == nil {
		return OptimizeReport{}, ErrNoLeader
	}
	b.FlushStats()
	now := b.clock.Period()
	planner0 := b.planner.Stats()
	report := leader.optimizeShard(ctx, b.statsDB.Objects(), now, true)
	report.Leader = leader.id
	report.Scanned = report.Recomputed
	planner1 := b.planner.Stats()
	report.PlannerHits = planner1.Hits - planner0.Hits
	report.PlannerMisses = planner1.Misses - planner0.Misses
	b.recordOptimize(report)
	return report, ctx.Err()
}

// electLeader picks the alive engine with the lowest identifier — a
// deterministic stand-in for the paper's leader election among engines
// of all datacenters.
func (b *Broker) electLeader() *Engine {
	var leader *Engine
	for _, e := range b.engines {
		if !e.Alive() {
			continue
		}
		if leader == nil || e.id < leader.id {
			leader = e
		}
	}
	return leader
}

// optimizeShard processes one engine's share of the accessed-object set.
// When force is true the trend gate is bypassed.
func (e *Engine) optimizeShard(ctx context.Context, objs []string, now int64, force bool) OptimizeReport {
	var report OptimizeReport
	for _, obj := range objs {
		if ctx.Err() != nil {
			break
		}
		noteProgress(ctx, 1)
		changed := force || e.detectTrendChange(obj, now)
		if !changed {
			continue
		}
		if !force {
			report.TrendChanged++
		}
		migrated, cost, recomputed, evaluated := e.reoptimizeObject(ctx, obj, now)
		report.Evaluated += evaluated
		if recomputed {
			report.Recomputed++
		}
		if migrated {
			report.Migrated++
			report.MigrationUSD += cost
		}
	}
	return report
}

// detectTrendChange applies the momentum detector statelessly over the
// object's recorded history: it compares the SMA of the last w periods
// against the SMA of the preceding w periods.
func (e *Engine) detectTrendChange(obj string, now int64) bool {
	h := e.b.statsDB.History(obj)
	if h == nil {
		return false
	}
	w := e.b.cfg.DetectWindow
	series := h.OpsSeries(now, w+1)
	if len(series) < w+1 {
		return true // young object: history shorter than the window
	}
	var prev, cur float64
	for i := 0; i < w; i++ {
		prev += series[i]
		cur += series[i+1]
	}
	prev /= float64(w)
	cur /= float64(w)
	return trend.Momentum(prev, cur) > e.b.cfg.DetectLimit
}

// reoptimizeObject recomputes an object's placement from its access
// history over the adaptive decision period, migrating when worthwhile.
// evaluated counts the candidate sets examined by this object's
// searches (placement plus coupling probes).
func (e *Engine) reoptimizeObject(ctx context.Context, obj string, now int64) (migrated bool, cost float64, recomputed bool, evaluated int) {
	container, key, ok := splitObjectName(obj)
	if !ok {
		return false, 0, false, 0
	}
	meta, err := e.Head(ctx, container, key)
	if err != nil {
		return false, 0, false, 0
	}
	h := e.b.statsDB.History(obj)
	if h == nil {
		return false, 0, false, 0
	}
	rule := e.b.rules.Resolve(container, key, meta.Class)

	d, coupleEval := e.updateDecisionPeriod(obj, meta, h, rule, now)
	evaluated += coupleEval
	sum := h.Summary(now, d)
	sum.StorageBytes = float64(meta.Size)

	// placeWithRetry (not a bare planner call): the planned providers are
	// re-verified as reachable, so a backend that died without a registry
	// event (no epoch bump) is excluded instead of poisoning the
	// migration target until the next market change.
	res, err := e.placeWithRetry(rule, sum, meta.Size)
	evaluated += res.Evaluated
	if err != nil {
		return false, 0, true, evaluated
	}
	cur := currentPlacementFromMeta(e, meta)
	if res.Placement.Equal(cur) {
		return false, 0, true, evaluated
	}
	// Migrate only if the savings over the benefit horizon cover the
	// migration cost (§III-A3). The horizon is the decision period,
	// stretched to the object's expected remaining lifetime and the
	// configured minimum.
	horizon := d
	if ttl := e.ttlPeriods(obj, meta, now); ttl > horizon {
		horizon = ttl
	}
	if e.b.cfg.MigrationHorizon > horizon {
		horizon = e.b.cfg.MigrationHorizon
	}
	curPrice := core.PeriodCost(cur, sum, e.b.cfg.PeriodHours)
	saving := (curPrice - res.Price) * float64(horizon)
	migCost := core.MigrationCost(cur, res.Placement, float64(meta.Size)/1e9)
	if saving <= migCost {
		return false, 0, true, evaluated
	}
	if err := e.migrate(ctx, meta, res.Placement); err != nil {
		return false, 0, true, evaluated
	}
	e.b.setPlacement(obj, res.Placement)
	return true, migCost, true, evaluated
}

// updateDecisionPeriod runs the coupling evaluation (D/2, D, 2D) when
// the object's controller is due, returning the decision period to use
// and the number of candidate sets the probes examined. The coupling
// probes share one prepared search: the market does not change between
// the D/2, D and 2D evaluations.
func (e *Engine) updateDecisionPeriod(obj string, meta ObjectMeta, h *stats.History, rule core.Rule, now int64) (int, int) {
	e.b.mu.Lock()
	ctl, ok := e.b.decisions[obj]
	if !ok {
		initial := e.b.cfg.DecisionPeriod
		// Seed from the class's expected lifetime when available: a
		// short-lived class should not be optimized with a long horizon.
		if ttl, ok := e.b.statsDB.Classes().ExpectedTTL(meta.Class, e.b.statsDB.AgeHours(obj, now)); ok {
			if p := int(ttl / e.b.cfg.PeriodHours); p >= core.MinDecisionPeriod && p < initial {
				initial = p
			}
		}
		ctl = core.NewDecisionController(initial, 0)
		e.b.decisions[obj] = ctl
	}
	due := ctl.Tick()
	e.b.mu.Unlock()
	if !due {
		return ctl.D(), 0
	}

	// limit = min(TTL_obj, |H_obj|) in sampling periods.
	limit := h.Span(now)
	if ttl := e.ttlPeriods(obj, meta, now); ttl > 0 && ttl < limit {
		limit = ttl
	}
	cands := ctl.Candidates(limit)
	epoch, specs, free := e.b.market()
	evaluated := 0
	search, err := e.b.planner.Search(epoch, specs, rule)
	bestIdx, bestPrice := 1, 0.0
	if err == nil {
		for i, d := range cands {
			sum := h.Summary(now, d)
			sum.StorageBytes = float64(meta.Size)
			res := search.Best(sum, meta.Size, free)
			evaluated += res.Evaluated
			if !res.Feasible {
				continue
			}
			if i == 0 || res.Price < bestPrice {
				bestIdx, bestPrice = i, res.Price
			}
		}
	}
	e.b.mu.Lock()
	ctl.Update(bestIdx, cands)
	d := ctl.D()
	e.b.mu.Unlock()
	return d, evaluated
}

// ttlPeriods resolves the object's time left to live in sampling
// periods: the user hint first, then the class lifetime statistics.
func (e *Engine) ttlPeriods(obj string, meta ObjectMeta, now int64) int {
	age := e.b.statsDB.AgeHours(obj, now)
	if meta.TTLHours > 0 {
		left := meta.TTLHours - age
		if left < 0 {
			left = 0
		}
		return int(left / e.b.cfg.PeriodHours)
	}
	if ttl, ok := e.b.statsDB.Classes().ExpectedTTL(meta.Class, age); ok {
		return int(ttl / e.b.cfg.PeriodHours)
	}
	return 0
}

// currentPlacementFromMeta rebuilds the Placement from stored chunk
// locations (engines are stateless; the broker's placement map is only a
// cache).
func currentPlacementFromMeta(e *Engine, meta ObjectMeta) core.Placement {
	if p, ok := e.b.CurrentPlacement(objectName(meta.Container, meta.Key)); ok {
		return p
	}
	p := core.Placement{M: meta.M}
	for _, name := range meta.Chunks {
		if s, ok := e.b.registry.Store(name); ok {
			p.Providers = append(p.Providers, s.Spec())
		}
	}
	return p
}

// migrate moves an object to a new placement, streaming stripe by
// stripe: each stripe is reconstructed from the current chunks,
// re-encoded for the target placement and written out before the next
// stripe is read, so migration of a large object never buffers it
// whole. The superseded chunks are deleted once the new metadata is
// committed.
func (e *Engine) migrate(ctx context.Context, meta ObjectMeta, to core.Placement) error {
	src, err := e.openObjectReader(ctx, meta, false)
	if err != nil {
		return fmt.Errorf("engine: migrate read: %w", err)
	}
	defer src.Close()
	uuid := NewUUID()
	newMeta := meta
	newMeta.UUID = uuid
	newMeta.SKey = StorageKey(meta.Container, meta.Key, uuid)
	newMeta.M = to.M
	if err := e.writeChunksStream(ctx, &newMeta, to, src); err != nil {
		return fmt.Errorf("engine: migrate write: %w", err)
	}
	if newMeta.Checksum != meta.Checksum {
		e.deleteChunks(newMeta)
		return fmt.Errorf("engine: migrate: %w", ErrChecksum)
	}
	ts := e.b.clock.Timestamp()
	version, err := encodeMeta(newMeta, ts)
	if err != nil {
		e.deleteChunks(newMeta)
		return err
	}
	// Commit under the row lock, and only if the version we migrated is
	// still the live one: a client write (or delete) that landed while
	// the chunks were copying must win — a background migration may
	// never clobber an acknowledged update or resurrect a tombstone.
	row := RowKey(meta.Container, meta.Key)
	lk := e.b.rowLock(row)
	lk.Lock()
	cur, losers := e.currentVersion(row)
	if cur == nil || cur.UUID != meta.UUID {
		lk.Unlock()
		e.deleteChunks(newMeta)
		e.cleanupVersions(losers)
		return fmt.Errorf("engine: migrate: object changed mid-migration")
	}
	if err := e.b.meta.Put(e.dc, row, version); err != nil {
		lk.Unlock()
		e.deleteChunks(newMeta)
		return err
	}
	lk.Unlock()
	e.cleanupVersions(losers)
	e.deleteChunks(meta)
	e.invalidateCached(meta)
	return nil
}

// VerifyObject checks that an object's stored chunks are sufficient and
// parity-consistent across every stripe, returning the minimum number
// of reachable chunks over the stripes. Verification reads every chunk
// from its provider (never the stripe cache — a cached stripe proves
// nothing about chunk health), fanning the per-stripe fetches out over
// the read path's bounded worker pool.
func (e *Engine) VerifyObject(ctx context.Context, container, key string) (reachable int, err error) {
	meta, err := e.Head(ctx, container, key)
	if err != nil {
		return 0, err
	}
	n := len(meta.Chunks)
	coder, err := erasure.Cached(meta.M, n)
	if err != nil {
		return 0, err
	}
	workers := e.b.cfg.ReadParallelism
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	reachable = n
	for s := 0; s < meta.StripeCount(); s++ {
		chunks := make([][]byte, n)
		var stripeReachable atomic.Int32
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i, name := range meta.Chunks {
			st, ok := e.b.registry.Store(name)
			if !ok || !st.Available() {
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, st cloud.Backend) {
				defer wg.Done()
				defer func() { <-sem }()
				if data, err := st.Get(ctx, meta.chunkKey(s, i)); err == nil {
					chunks[i] = data
					stripeReachable.Add(1)
				}
			}(i, st)
		}
		wg.Wait()
		got := int(stripeReachable.Load())
		if err := ctx.Err(); err != nil {
			return reachable, err
		}
		if got < reachable {
			reachable = got
		}
		if got < meta.M {
			return reachable, ErrNotEnoughChunks
		}
		if got == n {
			ok, err := coder.Verify(chunks)
			if err != nil {
				return reachable, err
			}
			if !ok {
				return reachable, ErrChecksum
			}
		}
	}
	return reachable, nil
}

// splitObjectName parses "container/key" (keys may contain slashes).
func splitObjectName(obj string) (container, key string, ok bool) {
	i := strings.IndexByte(obj, '/')
	if i <= 0 || i == len(obj)-1 {
		return "", "", false
	}
	return obj[:i], obj[i+1:], true
}
