package core

import (
	"math"
	"sort"

	"scalia/internal/cloud"
	"scalia/internal/stats"
)

// Options tunes the placement search.
type Options struct {
	// PeriodHours is the sampling-period duration (default 1).
	PeriodHours float64
	// Pruned selects the polynomial heuristic instead of the exact
	// exponential enumeration; the paper notes the exact search is
	// feasible for today's |P| < 15 but sketches a knapsack-style
	// approximation for larger markets.
	Pruned bool
	// FreeBytes, when non-nil, caps the chunk a provider can accept
	// (remaining capacity of private resources).
	FreeBytes map[string]int64
	// ObjectBytes is the logical object size used for chunk-size
	// constraint checks; zero skips those checks.
	ObjectBytes int64
}

// Result is the outcome of a placement search.
type Result struct {
	Placement Placement
	// Price is the expected cost per sampling period (USD).
	Price    float64
	Feasible bool
	// Evaluated counts candidate sets examined (ablation metric).
	Evaluated int
}

// BestPlacement implements Algorithm 1: it returns the cheapest provider
// set and erasure threshold satisfying the rule, pricing each candidate
// with the object's access history summary.
func BestPlacement(specs []cloud.Spec, rule Rule, load stats.Summary, opts Options) (Result, error) {
	if err := rule.Validate(); err != nil {
		return Result{}, err
	}
	if opts.PeriodHours <= 0 {
		opts.PeriodHours = 1
	}
	// Zone pre-filter: every chunk must live in an acceptable zone.
	filtered := make([]cloud.Spec, 0, len(specs))
	for _, s := range specs {
		if s.ServesAny(rule.Zones) {
			filtered = append(filtered, s)
		}
	}
	sort.Slice(filtered, func(i, j int) bool { return filtered[i].Name < filtered[j].Name })

	if opts.Pruned {
		res := prunedBest(filtered, storageCheapest(filtered), rule, load,
			opts.PeriodHours, opts.ObjectBytes, opts.FreeBytes)
		if !res.Feasible {
			return Result{Evaluated: res.Evaluated}, ErrNoProviders
		}
		return res, nil
	}
	return bestExact(filtered, rule, load, opts)
}

// bestExact enumerates every subset (getAllCombinations) as in the
// paper's Algorithm 1. Complexity O(2^|P|).
func bestExact(specs []cloud.Spec, rule Rule, load stats.Summary, opts Options) (Result, error) {
	n := len(specs)
	best := Result{Price: math.MaxFloat64}
	pset := make([]cloud.Spec, 0, n)
	for mask := 1; mask < 1<<uint(n); mask++ {
		pset = pset[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				pset = append(pset, specs[i])
			}
		}
		best.Evaluated++
		evaluateCandidate(pset, rule, load, opts, &best)
	}
	if !best.Feasible {
		return Result{Evaluated: best.Evaluated}, ErrNoProviders
	}
	return best, nil
}

// evaluateCandidate runs lines 5-16 of Algorithm 1 for one candidate set
// and updates best if the set is feasible and cheaper.
func evaluateCandidate(pset []cloud.Spec, rule Rule, load stats.Summary, opts Options, best *Result) {
	// Line 5-6: lock-in filter. lockin(pset) = 1/|pset| must not exceed
	// the rule's lock-in factor.
	if 1.0/float64(len(pset)) > rule.LockIn+1e-12 {
		return
	}
	// Lines 7-10: durability threshold and availability filter, with m
	// lowered until both constraints hold (see FeasibleThreshold).
	th := FeasibleThreshold(pset, rule.Durability, rule.Availability)
	if th <= 0 {
		return
	}
	// Chunk-size and capacity constraints (§III-A2): with threshold th the
	// chunk size is ceil(size/th); providers that cannot hold it make the
	// set infeasible (the enumeration covers the exclusion alternative).
	if !chunkFits(pset, th, opts.ObjectBytes, opts.FreeBytes) {
		return
	}
	// Line 11: expected price.
	p := Placement{Providers: append([]cloud.Spec(nil), pset...), M: th}
	price := PeriodCost(p, load, opts.PeriodHours)
	if !best.Feasible || price < best.Price-1e-15 ||
		(math.Abs(price-best.Price) <= 1e-15 && tieBreak(p, best.Placement)) {
		best.Feasible = true
		best.Price = price
		best.Placement = p
	}
}

// tieBreak makes the search deterministic when two sets price equally:
// prefer fewer providers (less operational surface), then lexicographic
// name order.
func tieBreak(a, b Placement) bool {
	if a.N() != b.N() {
		return a.N() < b.N()
	}
	an, bn := a.Names(), b.Names()
	for i := range an {
		if an[i] != bn[i] {
			return an[i] < bn[i]
		}
	}
	return false
}

// storageCheapest returns the specs reordered by storage price, then
// name — the pruned heuristic's cold-data seed ordering. Computed once
// per search (or once per prepared Search), not per set size.
func storageCheapest(specs []cloud.Spec) []cloud.Spec {
	byStorage := append([]cloud.Spec(nil), specs...)
	sort.Slice(byStorage, func(i, j int) bool {
		if byStorage[i].Pricing.StorageGBMonth != byStorage[j].Pricing.StorageGBMonth {
			return byStorage[i].Pricing.StorageGBMonth < byStorage[j].Pricing.StorageGBMonth
		}
		return byStorage[i].Name < byStorage[j].Name
	})
	return byStorage
}

// chunkFits checks the chunk-size and capacity constraints (§III-A2)
// for a candidate set at threshold m: the chunk size is
// ceil(objectBytes/m); a provider whose MaxChunkBytes or remaining free
// capacity cannot hold it makes the set infeasible. objectBytes == 0
// skips the checks.
func chunkFits(pset []cloud.Spec, m int, objectBytes int64, free map[string]int64) bool {
	if objectBytes <= 0 || m <= 0 {
		return true
	}
	chunk := (objectBytes + int64(m) - 1) / int64(m)
	for _, s := range pset {
		if s.MaxChunkBytes > 0 && chunk > s.MaxChunkBytes {
			return false
		}
		if free != nil {
			if f, ok := free[s.Name]; ok && chunk > f {
				return false
			}
		}
	}
	return true
}

// prunedBest is the polynomial heuristic: for every set size k it grows
// a candidate greedily by marginal expected price and evaluates the
// result, plus the seed set of the k storage-cheapest providers
// (byStorage, precomputed by the caller). It examines O(|P|^3)
// candidates instead of 2^|P|, with all scratch state reused across the
// greedy-growth inner loop.
//
// The greedy trial pricing is incremental: with the optimistic
// threshold m = |cand|, PeriodCost over cand = grown + {s} decomposes
// into a per-provider component divided by |cand| (storage, transfer
// shares) plus a flat per-provider component (operations) — see
// growthTerms. Each trial provider is therefore priced in O(1) from two
// running sums over the grown set, instead of re-running PeriodCost in
// O(k).
func prunedBest(specs, byStorage []cloud.Spec, rule Rule, load stats.Summary,
	periodHours float64, objectBytes int64, free map[string]int64) Result {
	n := len(specs)
	best := Result{Price: math.MaxFloat64}
	minK := rule.MinProviders()
	if minK < 1 {
		minK = 1
	}
	div, flat := growthTerms(specs, load, periodHours)
	used := make([]bool, n)
	grown := make([]cloud.Spec, 0, n)
	for k := minK; k <= n; k++ {
		// Greedy growth by marginal price.
		grown = grown[:0]
		for i := range used {
			used[i] = false
		}
		sumDiv, sumFlat := 0.0, 0.0 // running totals over grown
		for len(grown) < k {
			// Price with an optimistic threshold equal to |cand| (pure
			// marginal ranking; feasibility is verified afterwards).
			kTrial := float64(len(grown) + 1)
			bestIdx, bestPrice := -1, math.MaxFloat64
			for i := range specs {
				if used[i] {
					continue
				}
				price := (sumDiv+div[i])/kTrial + sumFlat + flat[i]
				if price < bestPrice {
					bestPrice, bestIdx = price, i
				}
			}
			if bestIdx < 0 {
				break
			}
			used[bestIdx] = true
			grown = append(grown, specs[bestIdx])
			sumDiv += div[bestIdx]
			sumFlat += flat[bestIdx]
		}
		if len(grown) == k {
			best.Evaluated++
			evaluatePruned(grown, rule, load, periodHours, objectBytes, free, &best)
		}
		// Storage-cheapest seed of size k, useful for cold data.
		best.Evaluated++
		evaluatePruned(byStorage[:k], rule, load, periodHours, objectBytes, free, &best)
	}
	return best
}

// growthTerms precomputes each provider's contribution to the greedy
// trial price at optimistic threshold m = n: PeriodCost then reduces to
// sum(div)/m + sum(flat), where div holds the components whose
// per-provider share shrinks with the set (storage chunk, transfer
// shares) and flat the per-provider operation charges. The read
// components follow PeriodCost's guard: with m = n every provider
// serves reads, so the "m cheapest" selection is the whole set.
func growthTerms(specs []cloud.Spec, load stats.Summary, periodHours float64) (div, flat []float64) {
	if periodHours <= 0 {
		periodHours = 1
	}
	storageGB := load.StorageBytes / 1e9
	bytesInGB := load.BytesIn / 1e9
	bytesOutGB := load.BytesOut / 1e9
	readsActive := load.Reads > 0 && load.BytesOut >= 0
	div = make([]float64, len(specs))
	flat = make([]float64, len(specs))
	for i, s := range specs {
		div[i] = storageGB*s.Pricing.StorageGBMonth*periodHours/cloud.HoursPerMonth +
			bytesInGB*s.Pricing.BandwidthInGB
		flat[i] = load.Writes * s.Pricing.OpsPer1000 / 1000
		if readsActive {
			div[i] += bytesOutGB * s.Pricing.BandwidthOutGB
			flat[i] += load.Reads * s.Pricing.OpsPer1000 / 1000
		}
	}
	return div, flat
}

// evaluatePruned is evaluateCandidate with the per-object constraints
// passed explicitly (the prepared-search path has no Options value).
func evaluatePruned(pset []cloud.Spec, rule Rule, load stats.Summary,
	periodHours float64, objectBytes int64, free map[string]int64, best *Result) {
	opts := Options{PeriodHours: periodHours, ObjectBytes: objectBytes, FreeBytes: free}
	evaluateCandidate(pset, rule, load, opts, best)
}
