// Package metadata implements Scalia's database layer (paper §III-C): a
// from-scratch multi-master NoSQL key-value store with multi-version
// concurrency control, vector-clock conflict detection (the paper's
// "anti-entropy mechanisms such as vector clocks"), latest-timestamp
// conflict resolution (§III-D), tombstoned deletes, and asynchronous
// multi-datacenter replication with partition tolerance and anti-entropy
// synchronization.
package metadata

// Ordering is the result of comparing two vector clocks.
type Ordering int

// Vector clock orderings.
const (
	Equal Ordering = iota
	Before
	After
	Concurrent
)

// String implements fmt.Stringer.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	default:
		return "concurrent"
	}
}

// VectorClock maps node identifiers to event counters, establishing a
// partial causal order over versions written at different datacenters.
type VectorClock map[string]uint64

// Clone returns an independent copy.
func (vc VectorClock) Clone() VectorClock {
	out := make(VectorClock, len(vc))
	for k, v := range vc {
		out[k] = v
	}
	return out
}

// Tick increments node's counter and returns the clock for chaining.
func (vc VectorClock) Tick(node string) VectorClock {
	vc[node]++
	return vc
}

// Merge folds other into vc taking the element-wise maximum.
func (vc VectorClock) Merge(other VectorClock) VectorClock {
	for k, v := range other {
		if v > vc[k] {
			vc[k] = v
		}
	}
	return vc
}

// Compare returns the causal relation of vc to other.
func (vc VectorClock) Compare(other VectorClock) Ordering {
	less, greater := false, false
	for k, v := range vc {
		o := other[k]
		if v < o {
			less = true
		} else if v > o {
			greater = true
		}
	}
	for k, o := range other {
		if _, ok := vc[k]; !ok && o > 0 {
			less = true
		}
	}
	switch {
	case less && greater:
		return Concurrent
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// Dominates reports whether vc is causally at or after other.
func (vc VectorClock) Dominates(other VectorClock) bool {
	ord := vc.Compare(other)
	return ord == After || ord == Equal
}
