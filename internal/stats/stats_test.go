package stats

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestSampleOpsAndMerge(t *testing.T) {
	a := Sample{Period: 3, Reads: 2, Writes: 1, Deletes: 1, BytesOut: 100, BytesIn: 50, StorageBytes: 10}
	if a.Ops() != 4 {
		t.Fatalf("Ops = %d, want 4", a.Ops())
	}
	b := Sample{Period: 3, Reads: 3, BytesOut: 30, StorageBytes: 25}
	a.Merge(b)
	if a.Reads != 5 || a.BytesOut != 130 || a.StorageBytes != 25 {
		t.Fatalf("Merge result: %+v", a)
	}
	// StorageBytes is a gauge: merging a smaller gauge keeps the max.
	a.Merge(Sample{StorageBytes: 5})
	if a.StorageBytes != 25 {
		t.Fatalf("StorageBytes gauge = %d, want 25", a.StorageBytes)
	}
}

func TestSummarize(t *testing.T) {
	samples := []Sample{
		{Period: 1, Reads: 10, BytesOut: 1000, StorageBytes: 500},
		{Period: 2, Reads: 20, BytesOut: 2000, StorageBytes: 500},
	}
	sum := Summarize(samples, 4) // two zero periods implied
	if sum.Periods != 4 {
		t.Fatalf("Periods = %d", sum.Periods)
	}
	if sum.Reads != 7.5 {
		t.Errorf("Reads = %v, want 7.5", sum.Reads)
	}
	if sum.BytesOut != 750 {
		t.Errorf("BytesOut = %v, want 750", sum.BytesOut)
	}
	// Storage averages only over periods where the object existed.
	if sum.StorageBytes != 500 {
		t.Errorf("StorageBytes = %v, want 500", sum.StorageBytes)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if got := Summarize(nil, 0); got != (Summary{}) {
		t.Fatalf("Summarize(nil) = %+v", got)
	}
}

func TestHistoryWindow(t *testing.T) {
	h := NewHistory(0)
	for p := int64(1); p <= 10; p++ {
		h.Record(Sample{Period: p, Reads: p})
	}
	win := h.Window(10, 3)
	if len(win) != 3 || win[0].Period != 8 || win[2].Period != 10 {
		t.Fatalf("Window = %+v", win)
	}
	// Gap handling: window over missing periods returns only present ones.
	win = h.Window(15, 6)
	if len(win) != 1 || win[0].Period != 10 {
		t.Fatalf("Window with gap = %+v", win)
	}
}

func TestHistoryMergesSamePeriod(t *testing.T) {
	h := NewHistory(0)
	h.Record(Sample{Period: 5, Reads: 1})
	h.Record(Sample{Period: 5, Reads: 2})
	win := h.Window(5, 1)
	if len(win) != 1 || win[0].Reads != 3 {
		t.Fatalf("merged window = %+v", win)
	}
	if h.Len() != 1 {
		t.Fatalf("Len = %d, want 1", h.Len())
	}
}

func TestHistoryEviction(t *testing.T) {
	h := NewHistory(5)
	for p := int64(1); p <= 8; p++ {
		h.Record(Sample{Period: p, Reads: 1})
	}
	if h.Len() != 5 {
		t.Fatalf("Len = %d, want 5", h.Len())
	}
	periods := h.Periods()
	if periods[0] != 4 {
		t.Fatalf("oldest retained = %d, want 4", periods[0])
	}
}

func TestHistorySpan(t *testing.T) {
	h := NewHistory(0)
	if h.Span(10) != 0 {
		t.Fatal("empty history must have span 0")
	}
	h.Record(Sample{Period: 4})
	if got := h.Span(10); got != 7 {
		t.Fatalf("Span = %d, want 7", got)
	}
}

func TestHistoryOpsSeries(t *testing.T) {
	h := NewHistory(0)
	h.Record(Sample{Period: 2, Reads: 5})
	h.Record(Sample{Period: 4, Writes: 3})
	got := h.OpsSeries(5, 5)
	want := []float64{0, 5, 0, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OpsSeries = %v, want %v", got, want)
		}
	}
}

func TestHistoryConcurrent(t *testing.T) {
	h := NewHistory(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for p := int64(0); p < 200; p++ {
				h.Record(Sample{Period: p, Reads: 1})
				h.Window(p, 10)
			}
		}(int64(g))
	}
	wg.Wait()
	sum := h.Summary(199, 200)
	if sum.Reads != 8 {
		t.Fatalf("Reads/period = %v, want 8", sum.Reads)
	}
}

func TestDiscretizeSize(t *testing.T) {
	cases := []struct {
		in, want int64
	}{
		{0, 0}, {-5, 0}, {1, 1}, {1 << 20, 1}, {1<<20 + 1, 2}, {10 << 20, 10},
	}
	for _, c := range cases {
		if got := DiscretizeSize(c.in); got != c.want {
			t.Errorf("DiscretizeSize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestClassKeyStableAndDistinct(t *testing.T) {
	a := ClassKey("image/gif", 250<<10)
	b := ClassKey("image/gif", 260<<10) // same MB bucket
	if a != b {
		t.Error("sizes in the same MB bucket must share a class")
	}
	c := ClassKey("image/gif", 5<<20)
	if a == c {
		t.Error("different MB buckets must differ")
	}
	d := ClassKey("application/zip", 250<<10)
	if a == d {
		t.Error("different mimes must differ")
	}
	if len(a) != 32 {
		t.Errorf("class key must be an MD5 hex string, got %q", a)
	}
}

func TestLifetimeExpectedTTLPaperShape(t *testing.T) {
	// Fig. 5: a class of 20 objects with lifetimes spread over 0-6 hours.
	// The expected-TTL curve must be decreasing in expectation and the
	// tail conditional must exceed the unconditional mean minus age.
	d := NewLifetimeDist(0)
	for i := 0; i < 20; i++ {
		d.Observe(6 * float64(i) / 19)
	}
	atBirth, ok := d.ExpectedTTL(0)
	if !ok {
		t.Fatal("expected TTL at birth")
	}
	if math.Abs(atBirth-3.157894736) > 1e-6 {
		t.Errorf("E[TTL|age 0] = %v, want mean of positive lifetimes ~3.158", atBirth)
	}
	at2h, ok := d.ExpectedTTL(2)
	if !ok {
		t.Fatal("expected TTL at age 2")
	}
	if at2h >= atBirth {
		t.Errorf("E[TTL|2h] = %v must be below E[TTL|0] = %v", at2h, atBirth)
	}
	if at2h <= 0 {
		t.Errorf("E[TTL|2h] = %v must be positive", at2h)
	}
	// Beyond every observed lifetime there is no estimate.
	if _, ok := d.ExpectedTTL(7); ok {
		t.Error("no TTL estimate should exist past the max observed lifetime")
	}
}

func TestLifetimeQuantileAndHistogram(t *testing.T) {
	d := NewLifetimeDist(0)
	for i := 1; i <= 100; i++ {
		d.Observe(float64(i))
	}
	if q, _ := d.Quantile(0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q, _ := d.Quantile(1); q != 100 {
		t.Errorf("q1 = %v", q)
	}
	if q, _ := d.Quantile(0.5); math.Abs(q-50) > 1.5 {
		t.Errorf("median = %v, want ~50", q)
	}
	hist := d.Histogram(10, 10)
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != 100 {
		t.Errorf("histogram total = %d, want 100", total)
	}
}

func TestLifetimeReservoirBounded(t *testing.T) {
	d := NewLifetimeDist(64)
	for i := 0; i < 10000; i++ {
		d.Observe(float64(i % 100))
	}
	if d.Count() != 10000 {
		t.Fatalf("Count = %d", d.Count())
	}
	if len(d.lifetimes) != 64 {
		t.Fatalf("reservoir size = %d, want 64", len(d.lifetimes))
	}
	// The estimator must still produce a value in the observed range.
	ttl, ok := d.ExpectedTTL(0)
	if !ok || ttl <= 0 || ttl >= 100 {
		t.Fatalf("ExpectedTTL = %v, %v", ttl, ok)
	}
}

func TestLifetimeRejectsGarbage(t *testing.T) {
	d := NewLifetimeDist(0)
	d.Observe(-1)
	d.Observe(math.NaN())
	d.Observe(math.Inf(1))
	if d.Count() != 0 {
		t.Fatalf("garbage observations must be dropped, Count = %d", d.Count())
	}
}

func TestTTLCurveMonotoneProperty(t *testing.T) {
	// Property: remaining lifetime estimates stay within the observed
	// support for any age within it.
	f := func(seed uint8) bool {
		d := NewLifetimeDist(0)
		for i := 0; i <= int(seed%40)+2; i++ {
			d.Observe(float64(i) * 0.5)
		}
		curve := d.TTLCurve(0.5, float64(seed%40)*0.5)
		for _, v := range curve {
			if v < 0 || v > 25 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassRecordExpectedSummary(t *testing.T) {
	rec := newClassRecord()
	if _, ok := rec.ExpectedSummary(); ok {
		t.Fatal("empty class must report no expectation")
	}
	rec.ObserveSample(Sample{Reads: 10, BytesOut: 1000, StorageBytes: 100})
	rec.ObserveSample(Sample{Reads: 0, BytesOut: 0, StorageBytes: 100})
	sum, ok := rec.ExpectedSummary()
	if !ok {
		t.Fatal("expected a summary")
	}
	if sum.Reads != 5 || sum.BytesOut != 500 || sum.StorageBytes != 100 {
		t.Fatalf("ExpectedSummary = %+v", sum)
	}
}

func TestDBApplyAndHistory(t *testing.T) {
	db := NewDB(1)
	class := ClassKey("image/gif", 1000)
	db.Apply(Event{Object: "o1", Class: class, Kind: EventWrite, Bytes: 1000, StorageBytes: 1000, Period: 1})
	db.Apply(Event{Object: "o1", Class: class, Kind: EventRead, Bytes: 1000, StorageBytes: 1000, Period: 2})
	db.Apply(Event{Object: "o1", Class: class, Kind: EventRead, Bytes: 1000, StorageBytes: 1000, Period: 2})

	h := db.History("o1")
	if h == nil {
		t.Fatal("missing history")
	}
	sum := h.Summary(2, 2)
	if sum.Reads != 1 || sum.Writes != 0.5 {
		t.Fatalf("summary = %+v", sum)
	}
	if got, _ := db.ObjectClass("o1"); got != class {
		t.Fatalf("class = %q", got)
	}
	if created, _ := db.CreatedAt("o1"); created != 1 {
		t.Fatalf("created = %d", created)
	}
	if age := db.AgeHours("o1", 5); age != 4 {
		t.Fatalf("age = %v", age)
	}
}

func TestDBAccessedSince(t *testing.T) {
	db := NewDB(1)
	db.Apply(Event{Object: "a", Kind: EventWrite, Period: 1})
	db.Apply(Event{Object: "b", Kind: EventWrite, Period: 5})
	db.Apply(Event{Object: "a", Kind: EventRead, Period: 7})
	got := db.AccessedSince(5)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("AccessedSince = %v", got)
	}
	got = db.AccessedSince(6)
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("AccessedSince(6) = %v", got)
	}
}

func TestDBDeletionFeedsLifetime(t *testing.T) {
	db := NewDB(1)
	class := ClassKey("backup/tar", 40<<20)
	db.Apply(Event{Object: "o", Class: class, Kind: EventWrite, Period: 10, StorageBytes: 40 << 20})
	db.Apply(Event{Object: "o", Class: class, Kind: EventDelete, Period: 16})
	ttl, ok := db.Classes().ExpectedTTL(class, 0)
	if !ok {
		t.Fatal("lifetime distribution must exist after a deletion")
	}
	if ttl != 6 {
		t.Fatalf("ExpectedTTL = %v, want 6", ttl)
	}
}

func TestDBForget(t *testing.T) {
	db := NewDB(1)
	db.Apply(Event{Object: "o", Class: "c", Kind: EventWrite, Period: 1})
	db.Forget("o")
	if db.History("o") != nil {
		t.Fatal("history must be gone after Forget")
	}
	if got := db.AccessedSince(0); len(got) != 0 {
		t.Fatalf("AccessedSince after Forget = %v", got)
	}
}

func TestDBRefreshClasses(t *testing.T) {
	db := NewDB(1)
	for i := 0; i < 20; i++ {
		obj := fmt.Sprintf("o%d", i)
		db.Apply(Event{Object: obj, Class: "c", Kind: EventWrite, Bytes: 100, StorageBytes: 100, Period: 1})
		db.Apply(Event{Object: obj, Class: "c", Kind: EventRead, Bytes: 100, StorageBytes: 100, Period: 2})
	}
	db.RefreshClasses(4)
	sum, ok := db.Classes().Class("c").ExpectedSummary()
	if !ok {
		t.Fatal("class summary missing after refresh")
	}
	// Each object contributes 2 object-periods: one write, one read.
	if sum.Reads != 0.5 || sum.Writes != 0.5 {
		t.Fatalf("refreshed summary = %+v", sum)
	}
}

func TestAggregatorPipeline(t *testing.T) {
	db := NewDB(1)
	agg := NewAggregator(db, 8)
	defer agg.Close()
	agents := []*Agent{agg.NewAgent(), agg.NewAgent(), agg.NewAgent()}
	var wg sync.WaitGroup
	for i, a := range agents {
		wg.Add(1)
		go func(id int, a *Agent) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				a.Log(Event{Object: "obj", Class: "c", Kind: EventRead, Bytes: 10, Period: 1})
			}
		}(i, a)
	}
	wg.Wait()
	agg.Flush()
	h := db.History("obj")
	if h == nil {
		t.Fatal("no history after flush")
	}
	win := h.Window(1, 1)
	if len(win) != 1 || win[0].Reads != 1500 {
		t.Fatalf("reads = %+v, want 1500", win)
	}
}

func TestAggregatorCloseDrains(t *testing.T) {
	db := NewDB(1)
	agg := NewAggregator(db, 4)
	a := agg.NewAgent()
	for i := 0; i < 100; i++ {
		a.Log(Event{Object: "x", Kind: EventWrite, Period: 1})
	}
	agg.Close()
	win := db.History("x").Window(1, 1)
	if len(win) != 1 || win[0].Writes != 100 {
		t.Fatalf("writes after close = %+v", win)
	}
}
