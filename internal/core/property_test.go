package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scalia/internal/cloud"
	"scalia/internal/stats"
)

// randomLoad derives a well-formed load summary from fuzz inputs.
func randomLoad(reads, writes uint16, sizeMB uint8) stats.Summary {
	size := float64(sizeMB)*1e6 + 1
	return stats.Summary{
		Periods:      1,
		Reads:        float64(reads),
		Writes:       float64(writes % 4),
		BytesOut:     float64(reads) * size,
		BytesIn:      float64(writes%4) * size,
		StorageBytes: size,
	}
}

func TestPeriodCostNonNegativeProperty(t *testing.T) {
	specs := cloud.PaperProviders()
	f := func(reads, writes uint16, sizeMB uint8, mSel, nSel uint8) bool {
		n := int(nSel%5) + 1
		m := int(mSel%uint8(n)) + 1
		p := Placement{Providers: specs[:n], M: m}
		return PeriodCost(p, randomLoad(reads, writes, sizeMB), 1) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeriodCostMonotoneInLoadProperty(t *testing.T) {
	specs := cloud.PaperProviders()
	p := Placement{Providers: specs[:3], M: 2}
	f := func(reads, writes uint16, sizeMB uint8) bool {
		load := randomLoad(reads, writes, sizeMB)
		base := PeriodCost(p, load, 1)
		// More reads cannot be cheaper.
		more := load
		more.Reads += 10
		more.BytesOut += 10 * load.StorageBytes
		if PeriodCost(p, more, 1) < base {
			return false
		}
		// More stored bytes cannot be cheaper.
		bigger := load
		bigger.StorageBytes *= 2
		return PeriodCost(p, bigger, 1) >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBestPlacementNeverBeatenByCandidateProperty(t *testing.T) {
	// The optimizer's result must price at or below every feasible
	// candidate it can choose from — cross-checked by re-evaluating a
	// random subset against the returned optimum.
	specs := cloud.PaperProviders()
	rule := Rule{Durability: 0.99999, Availability: 0.9999, LockIn: 1}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		load := randomLoad(uint16(rng.Intn(500)), uint16(rng.Intn(4)), uint8(rng.Intn(200)))
		best, err := BestPlacement(specs, rule, load, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Random candidate subset.
		var pset []cloud.Spec
		for _, s := range specs {
			if rng.Intn(2) == 1 {
				pset = append(pset, s)
			}
		}
		if len(pset) < 2 {
			continue
		}
		th := FeasibleThreshold(pset, rule.Durability, rule.Availability)
		if th <= 0 {
			continue
		}
		cand := Placement{Providers: pset, M: th}
		if price := PeriodCost(cand, load, 1); price < best.Price-1e-12 {
			t.Fatalf("trial %d: candidate %v (%v) beats optimum %v (%v)",
				trial, cand, price, best.Placement, best.Price)
		}
	}
}

func TestMigrationCostNonNegativeProperty(t *testing.T) {
	specs := cloud.PaperProviders()
	f := func(fromSel, toSel uint8, sizeMB uint8) bool {
		fn := int(fromSel%4) + 2
		tn := int(toSel%4) + 2
		from := Placement{Providers: specs[:fn], M: fn - 1}
		to := Placement{Providers: specs[5-tn:], M: tn - 1}
		return MigrationCost(from, to, float64(sizeMB)/100) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThresholdAvailabilityConsistencyProperty(t *testing.T) {
	// For any subset and any constraints, the feasible threshold (when
	// positive) must satisfy both constraints, and threshold+1 must
	// violate at least one.
	specs := cloud.PaperProviders()
	rng := rand.New(rand.NewSource(17))
	durs := []float64{0.999, 0.99999, 0.9999999, 0.999999999999}
	avs := []float64{0.99, 0.999, 0.9999, 0.999995}
	for trial := 0; trial < 300; trial++ {
		var pset []cloud.Spec
		for _, s := range specs {
			if rng.Intn(2) == 1 {
				pset = append(pset, s)
			}
		}
		if len(pset) == 0 {
			continue
		}
		dr := durs[rng.Intn(len(durs))]
		ar := avs[rng.Intn(len(avs))]
		m := FeasibleThreshold(pset, dr, ar)
		if m <= 0 {
			continue
		}
		if GetAvailability(pset, m) < ar {
			t.Fatalf("threshold %d violates availability %v for %v", m, ar, pset)
		}
		if th := GetThreshold(pset, dr); m > th {
			t.Fatalf("feasible threshold %d exceeds durability threshold %d", m, th)
		}
		if m < len(pset) {
			// Maximality: m+1 must violate availability or durability.
			durOK := m+1 <= GetThreshold(pset, dr)
			avOK := GetAvailability(pset, m+1) >= ar
			if durOK && avOK {
				t.Fatalf("threshold %d not maximal for %v (dr=%v ar=%v)", m, pset, dr, ar)
			}
		}
	}
}

func TestStoredGBAccountsOverheadProperty(t *testing.T) {
	f := func(mSel, nSel uint8, sizeMB uint8) bool {
		n := int(nSel%5) + 1
		m := int(mSel%uint8(n)) + 1
		p := Placement{Providers: cloud.PaperProviders()[:n], M: m}
		size := float64(sizeMB) / 100
		stored := p.StoredGB(size)
		// Stored volume is size * n/m, always >= the logical size.
		return stored >= size-1e-12 && stored <= size*float64(n)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
